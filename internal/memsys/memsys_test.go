package memsys

import (
	"testing"
	"testing/quick"

	"clustersmt/internal/config"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("t", 1, 64, 2) // 1KB, 64B lines, 2-way: 8 sets
	if c.Sets() != 8 {
		t.Fatalf("sets = %d, want 8", c.Sets())
	}
	if st := c.Lookup(0); st != Invalid {
		t.Fatal("cold lookup should miss")
	}
	c.Insert(0, Shared)
	if st := c.Lookup(0); st != Shared {
		t.Fatalf("after insert state = %v", st)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", 1, 64, 2) // 8 sets; same set every 8 lines
	setStride := int64(8 * 64)
	a, b2, d := int64(0), setStride, 2*setStride
	c.Insert(a, Shared)
	c.Insert(b2, Shared)
	c.Lookup(a) // make a MRU
	v := c.Insert(d, Shared)
	if !v.Evicted || v.Line != b2 {
		t.Fatalf("victim = %+v, want line %d", v, b2)
	}
	if c.Probe(a) == Invalid || c.Probe(d) == Invalid {
		t.Fatal("resident lines missing")
	}
	if c.Probe(b2) != Invalid {
		t.Fatal("victim still resident")
	}
}

func TestCacheModifiedWritebackCount(t *testing.T) {
	c := NewCache("t", 1, 64, 2)
	setStride := int64(8 * 64)
	c.Insert(0, Modified)
	c.Insert(setStride, Shared)
	c.Insert(2*setStride, Shared) // evicts LRU = line 0 (Modified)
	if c.WritebackEvictions != 1 {
		t.Fatalf("writebacks = %d, want 1", c.WritebackEvictions)
	}
}

func TestCacheInsertExistingUpdatesState(t *testing.T) {
	c := NewCache("t", 1, 64, 2)
	c.Insert(0, Shared)
	v := c.Insert(0, Modified)
	if v.Evicted {
		t.Fatal("re-insert must not evict")
	}
	if c.Probe(0) != Modified {
		t.Fatal("state not updated")
	}
	if c.Resident() != 1 {
		t.Fatalf("resident = %d", c.Resident())
	}
}

func TestCacheSetStateAndInvalidate(t *testing.T) {
	c := NewCache("t", 1, 64, 2)
	c.Insert(64, Shared)
	c.SetState(64, Modified)
	if c.Probe(64) != Modified {
		t.Fatal("upgrade failed")
	}
	c.SetState(64, Invalid)
	if c.Probe(64) != Invalid {
		t.Fatal("invalidate failed")
	}
	// SetState on absent line is a no-op.
	c.SetState(4096, Modified)
	if c.Probe(4096) != Invalid {
		t.Fatal("phantom line appeared")
	}
}

// Property: a cache never holds the same line in two ways, and Resident
// never exceeds capacity.
func TestCacheInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewCache("t", 1, 64, 2)
		for _, op := range ops {
			line := int64(op%64) * 64
			switch op % 3 {
			case 0:
				c.Insert(line, Shared)
			case 1:
				c.Insert(line, Modified)
			case 2:
				c.Lookup(line)
			}
			if c.Resident() > 16 {
				return false
			}
		}
		// No duplicate lines.
		seen := map[int64]bool{}
		for i := range c.ways {
			w := c.ways[i]
			if w.state == Invalid {
				continue
			}
			if seen[w.line] {
				return false
			}
			seen[w.line] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankSetContention(t *testing.T) {
	b := NewBankSet(2, 1, 64)
	s1 := b.Acquire(10, 0)   // bank 0
	s2 := b.Acquire(10, 64)  // bank 1: no conflict
	s3 := b.Acquire(10, 128) // bank 0 again: conflicts
	if s1 != 10 || s2 != 10 {
		t.Fatalf("starts = %d,%d, want 10,10", s1, s2)
	}
	if s3 != 11 {
		t.Fatalf("conflicting start = %d, want 11", s3)
	}
	if b.Conflicts != 1 {
		t.Fatalf("conflicts = %d", b.Conflicts)
	}
}

func TestBankSetExtend(t *testing.T) {
	b := NewBankSet(1, 1, 64)
	s1 := b.Acquire(100, 0) // bank free at 101
	b.Extend(0, 8)          // fill occupancy: free at 109
	if s1 != 100 {
		t.Fatalf("first start = %d", s1)
	}
	if s := b.Acquire(100, 0); s != 109 {
		t.Fatalf("start after extend = %d, want 109", s)
	}
}

func TestTLBHitMissAndCapacity(t *testing.T) {
	tlb := NewTLB(4, 1)
	for p := int64(0); p < 4; p++ {
		if tlb.Access(p) {
			t.Fatalf("page %d: cold hit", p)
		}
	}
	for p := int64(0); p < 4; p++ {
		if !tlb.Access(p) {
			t.Fatalf("page %d: warm miss", p)
		}
	}
	tlb.Access(100) // evicts someone
	if tlb.Resident() != 4 {
		t.Fatalf("resident = %d, want 4", tlb.Resident())
	}
	if !tlb.Access(100) {
		t.Fatal("just-installed page missed")
	}
	if tlb.Miss != 5 || tlb.Hit != 5 {
		t.Fatalf("hit=%d miss=%d", tlb.Hit, tlb.Miss)
	}
}

func TestTLBDeterminism(t *testing.T) {
	run := func() []int64 {
		tlb := NewTLB(8, 42)
		var order []int64
		for p := int64(0); p < 64; p++ {
			tlb.Access(p % 17)
		}
		for p := int64(0); p < 17; p++ {
			if tlb.Access(p) {
				order = append(order, p)
			}
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic TLB")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic TLB contents")
		}
	}
}

func TestMSHRMergeAndCapacity(t *testing.T) {
	m := NewMSHRFile(2)
	if !m.TryAlloc(0, 64, 100) {
		t.Fatal("alloc 1 failed")
	}
	if !m.TryAlloc(0, 128, 100) {
		t.Fatal("alloc 2 failed")
	}
	if m.TryAlloc(0, 192, 100) {
		t.Fatal("alloc 3 should fail (full)")
	}
	if ready, ok := m.Pending(50, 64); !ok || ready != 100 {
		t.Fatalf("pending = %d,%v", ready, ok)
	}
	// After fills complete, entries retire lazily.
	if m.Free(100) != 2 {
		t.Fatalf("free after completion = %d, want 2", m.Free(100))
	}
	if m.Rejected != 1 || m.Merges != 1 || m.Allocated != 2 {
		t.Fatalf("stats: %+v", m)
	}
}

func TestChipInclusionOnL2Eviction(t *testing.T) {
	cfg := config.DefaultMem()
	// Tiny L2 to force eviction: 4KB 4-way with 64B lines = 16 sets.
	cfg.L2SizeKB = 4
	cfg.L1SizeKB = 4
	c := NewChip(0, cfg)
	setStride := int64(16 * 64)
	// Fill one L2 set beyond capacity.
	var lines []int64
	for i := int64(0); i <= 4; i++ {
		l := i * setStride
		c.Install(l, Shared)
		lines = append(lines, l)
	}
	// Exactly one of the first lines must have been evicted from L2 and
	// by inclusion from L1.
	evicted := 0
	for _, l := range lines {
		if c.L2.Probe(l) == Invalid {
			evicted++
			if c.L1.Probe(l) != Invalid {
				t.Fatalf("line %d: evicted from L2 but still in L1", l)
			}
		}
	}
	if evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
}

func TestChipMarkModified(t *testing.T) {
	cfg := config.DefaultMem()
	c := NewChip(0, cfg)
	c.Install(0, Shared)
	c.MarkModified(0)
	if c.L1.Probe(0) != Modified || c.L2.Probe(0) != Modified {
		t.Fatal("MarkModified did not reach both levels")
	}
	// L2-only resident line refills L1.
	c.L1.SetState(0, Invalid)
	c.MarkModified(0)
	if c.L1.Probe(0) != Modified {
		t.Fatal("MarkModified did not refill L1")
	}
}

func TestChipDowngradeAndInvalidate(t *testing.T) {
	c := NewChip(0, config.DefaultMem())
	c.Install(64, Modified)
	c.Downgrade(64)
	if c.L1.Probe(64) != Shared || c.L2.Probe(64) != Shared {
		t.Fatal("downgrade failed")
	}
	c.Invalidate(64)
	if c.State(64) != Invalid {
		t.Fatal("invalidate failed")
	}
}

// Property (stat conservation): every Lookup counts exactly one hit or
// one miss, and writeback evictions are a subset of evictions, under
// arbitrary interleavings of lookups, inserts and invalidations.
func TestCacheStatConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewCache("t", 1, 64, 2)
		lookups := uint64(0)
		for _, op := range ops {
			line := int64(op%64) * 64
			switch op % 4 {
			case 0:
				c.Lookup(line)
				lookups++
			case 1:
				c.Insert(line, Shared)
			case 2:
				c.Insert(line, Modified)
			case 3:
				c.SetState(line, Invalid)
			}
		}
		return c.Hits+c.Misses == lookups && c.Evictions >= c.WritebackEvictions
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (single-walk equivalence): driving one cache through
// FindWay+TouchHit/TouchMiss — the load path's single set walk — and a
// twin through plain Lookup leaves both with identical stats and
// identical tag/LRU contents under random access streams.
func TestCacheSingleWalkDifferential(t *testing.T) {
	f := func(ops []uint16) bool {
		ref := NewCache("ref", 1, 64, 2)
		fast := NewCache("fast", 1, 64, 2)
		for _, op := range ops {
			line := int64(op%64) * 64
			if op%3 == 0 {
				ref.Insert(line, Shared)
				fast.Insert(line, Shared)
				continue
			}
			refSt := ref.Lookup(line)
			var fastSt LineState
			if wi := fast.FindWay(line); wi >= 0 {
				fastSt = fast.TouchHit(wi)
			} else {
				fast.TouchMiss()
				fastSt = Invalid
			}
			if refSt != fastSt {
				return false
			}
		}
		if ref.Hits != fast.Hits || ref.Misses != fast.Misses || ref.tick != fast.tick {
			return false
		}
		for i := range ref.ways {
			if ref.ways[i] != fast.ways[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (MSHR retirement differential): the heap-retired fast path
// and the reference map sweep agree on every Pending/TryAlloc/Free/
// InFlight answer and on the exact Merges/Rejected/Allocated counts
// under random allocation streams with out-of-order completion times.
func TestMSHRDifferential(t *testing.T) {
	f := func(ops []uint16) bool {
		ref := NewMSHRFile(4)
		ref.Reference = true
		fast := NewMSHRFile(4)
		now := int64(0)
		for _, op := range ops {
			now += int64(op % 7)
			line := int64(op%16) * 64
			switch op % 3 {
			case 0:
				ready := now + int64(op%200)
				if _, merging := ref.Pending(now, line); !merging {
					a := ref.TryAlloc(now, line, ready)
					// Mirror the Pending-then-TryAlloc sequence exactly.
					_, _ = fast.Pending(now, line)
					if b := fast.TryAlloc(now, line, ready); a != b {
						return false
					}
				} else {
					_, _ = fast.Pending(now, line)
				}
			case 1:
				r1, ok1 := ref.Pending(now, line)
				r2, ok2 := fast.Pending(now, line)
				if r1 != r2 || ok1 != ok2 {
					return false
				}
			case 2:
				if ref.Free(now) != fast.Free(now) || ref.InFlight(now) != fast.InFlight(now) {
					return false
				}
			}
		}
		return ref.Merges == fast.Merges && ref.Rejected == fast.Rejected && ref.Allocated == fast.Allocated
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMSHROccupancyReadOnly: the observability probe must count
// outstanding fills without retiring completed ones — retirement order
// (and hence Merges/Allocated accounting) stays untouched.
func TestMSHROccupancyReadOnly(t *testing.T) {
	m := NewMSHRFile(4)
	if !m.TryAlloc(0, 64, 10) || !m.TryAlloc(0, 128, 20) {
		t.Fatal("allocations failed")
	}
	if got := m.Occupancy(5); got != 2 {
		t.Errorf("Occupancy(5) = %d, want 2", got)
	}
	if got := m.Occupancy(15); got != 1 {
		t.Errorf("Occupancy(15) = %d, want 1", got)
	}
	if got := m.Occupancy(25); got != 0 {
		t.Errorf("Occupancy(25) = %d, want 0", got)
	}
	// Occupancy(25) saw both fills complete but must not have retired
	// them: a retiring call at cycle 15 still finds the ready-at-20 fill.
	if got := m.InFlight(15); got != 1 {
		t.Errorf("InFlight(15) after Occupancy probes = %d, want 1 (probe mutated state)", got)
	}
}
