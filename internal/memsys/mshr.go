package memsys

// MSHRFile bounds the number of outstanding load misses per chip and
// merges secondary misses to a line already being fetched (§3.1:
// "non-blocking with up to 32 outstanding loads").
//
// Completed fills retire lazily. The fast path keeps, next to the
// line→ready map, a min-heap of (ready, line) pairs ordered by
// fill-complete cycle, so retirement pops only the fills that have
// actually completed — amortized O(1) per fill — instead of sweeping
// every pending entry on every Pending/TryAlloc/Free call. The original
// map-sweep retirement is kept behind Reference as the differential
// baseline; both paths produce identical entries and identical
// Merges/Rejected/Allocated counts.
type MSHRFile struct {
	cap     int
	pending map[int64]int64 // line -> fill-complete cycle
	fills   fillHeap        // fast path: pending fills ordered by ready

	// Reference selects the original O(pending) map-sweep retirement.
	// Must be set before the first access (see
	// coherence.System.SetReferencePaths).
	Reference bool

	Merges    uint64 // secondary misses piggybacked on a pending fill
	Rejected  uint64 // allocation attempts refused because the file was full
	Allocated uint64
}

// NewMSHRFile returns a file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		panic("memsys: MSHR file needs positive capacity")
	}
	return &MSHRFile{
		cap:     capacity,
		pending: make(map[int64]int64, capacity),
		fills:   make(fillHeap, 0, capacity),
	}
}

// sweep is the reference retirement: scan every pending entry and
// delete those whose fills have completed by now.
func (m *MSHRFile) sweep(now int64) {
	for line, ready := range m.pending {
		if ready <= now {
			delete(m.pending, line)
		}
	}
}

// retire removes entries whose fills have completed by now. The fast
// path pops the heap only while its earliest fill is due, so a call
// that retires nothing is O(1).
func (m *MSHRFile) retire(now int64) {
	if m.Reference {
		m.sweep(now)
		return
	}
	for len(m.fills) > 0 && m.fills[0].ready <= now {
		f := m.fills.pop()
		// A stale heap entry (the line was re-allocated with a new ready
		// cycle after an earlier retirement) must not evict the live one.
		if r, ok := m.pending[f.line]; ok && r == f.ready {
			delete(m.pending, f.line)
		}
	}
}

// Pending returns the fill-complete cycle for line if a fetch is in
// flight at cycle now.
func (m *MSHRFile) Pending(now, line int64) (int64, bool) {
	m.retire(now)
	ready, ok := m.pending[line]
	if ok {
		m.Merges++
	}
	return ready, ok
}

// TryAlloc reserves an entry for line completing at ready. It returns
// false when the file is full (the load must retry a later cycle).
func (m *MSHRFile) TryAlloc(now, line, ready int64) bool {
	m.retire(now)
	if len(m.pending) >= m.cap {
		m.Rejected++
		return false
	}
	m.pending[line] = ready
	if !m.Reference {
		m.fills.push(fill{ready: ready, line: line})
	}
	m.Allocated++
	return true
}

// Free returns the number of free entries at cycle now.
func (m *MSHRFile) Free(now int64) int {
	m.retire(now)
	return m.cap - len(m.pending)
}

// InFlight returns the number of outstanding fills at cycle now.
func (m *MSHRFile) InFlight(now int64) int {
	m.retire(now)
	return len(m.pending)
}

// Occupancy counts the fills still outstanding at cycle now WITHOUT
// retiring completed entries — a strictly read-only probe for the
// observability sampler, which must not perturb the retirement order
// either path (reference sweep or heap) would otherwise follow.
func (m *MSHRFile) Occupancy(now int64) int {
	n := 0
	for _, ready := range m.pending {
		if ready > now {
			n++
		}
	}
	return n
}

// fill is one outstanding fetch: the line being filled and the cycle
// its data arrives.
type fill struct{ ready, line int64 }

// fillHeap is a hand-rolled min-heap of fills keyed by ready cycle
// (container/heap's interface indirection is measurable at this call
// frequency).
type fillHeap []fill

func (h *fillHeap) push(f fill) {
	*h = append(*h, f)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].ready <= s[i].ready {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *fillHeap) pop() fill {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && s[l].ready < s[least].ready {
			least = l
		}
		if r < n && s[r].ready < s[least].ready {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}
