package memsys

// MSHRFile bounds the number of outstanding load misses per chip and
// merges secondary misses to a line already being fetched (§3.1:
// "non-blocking with up to 32 outstanding loads").
type MSHRFile struct {
	cap     int
	pending map[int64]int64 // line -> fill-complete cycle

	Merges    uint64 // secondary misses piggybacked on a pending fill
	Rejected  uint64 // allocation attempts refused because the file was full
	Allocated uint64
}

// NewMSHRFile returns a file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		panic("memsys: MSHR file needs positive capacity")
	}
	return &MSHRFile{cap: capacity, pending: make(map[int64]int64, capacity)}
}

// sweep retires entries whose fills have completed by now.
func (m *MSHRFile) sweep(now int64) {
	for line, ready := range m.pending {
		if ready <= now {
			delete(m.pending, line)
		}
	}
}

// Pending returns the fill-complete cycle for line if a fetch is in
// flight at cycle now.
func (m *MSHRFile) Pending(now, line int64) (int64, bool) {
	m.sweep(now)
	ready, ok := m.pending[line]
	if ok {
		m.Merges++
	}
	return ready, ok
}

// TryAlloc reserves an entry for line completing at ready. It returns
// false when the file is full (the load must retry a later cycle).
func (m *MSHRFile) TryAlloc(now, line, ready int64) bool {
	m.sweep(now)
	if len(m.pending) >= m.cap {
		m.Rejected++
		return false
	}
	m.pending[line] = ready
	m.Allocated++
	return true
}

// Free returns the number of free entries at cycle now.
func (m *MSHRFile) Free(now int64) int {
	m.sweep(now)
	return m.cap - len(m.pending)
}

// InFlight returns the number of outstanding fills at cycle now.
func (m *MSHRFile) InFlight(now int64) int {
	m.sweep(now)
	return len(m.pending)
}
