package memsys

// BankSet models contention on a banked structure: each bank has a
// next-free cycle, and every access occupies its bank for a fixed
// number of cycles (Table 3: read/write occupancy 1; fills occupy for
// the 8-cycle fill time).
type BankSet struct {
	free      []int64
	occupancy int64

	// Conflicts counts accesses that had to wait for a busy bank.
	Conflicts uint64
	// BusyCycles accumulates total wait cycles (contention integral).
	BusyCycles uint64
}

// NewBankSet returns n banks with the given per-access occupancy.
func NewBankSet(n, occupancy int) *BankSet {
	if n <= 0 || occupancy <= 0 {
		panic("memsys: bank set needs positive banks and occupancy")
	}
	return &BankSet{free: make([]int64, n), occupancy: int64(occupancy)}
}

// Banks returns the number of banks.
func (b *BankSet) Banks() int { return len(b.free) }

// bankFor maps a line address onto a bank (line interleaving).
func (b *BankSet) bankFor(line, lineBytes int64) int {
	return int((line / lineBytes) % int64(len(b.free)))
}

// Acquire reserves the bank serving line starting no earlier than now
// and returns the cycle at which service actually begins.
func (b *BankSet) Acquire(now, line, lineBytes int64) int64 {
	i := b.bankFor(line, lineBytes)
	start := now
	if b.free[i] > start {
		b.Conflicts++
		b.BusyCycles += uint64(b.free[i] - start)
		start = b.free[i]
	}
	b.free[i] = start + b.occupancy
	return start
}

// Extend adds extra occupancy to the bank serving line, on top of its
// current reservation — used to model the fill time of a miss. (The
// bank's state is a scalar next-free cycle, so the fill occupancy is
// charged adjacent to the triggering access rather than at the exact
// fill-return cycle; total bank occupancy per miss is preserved, which
// is what drives the contention the paper models.)
func (b *BankSet) Extend(line, lineBytes int64, extra int) {
	b.free[b.bankFor(line, lineBytes)] += int64(extra)
}
