package memsys

// BankSet models contention on a banked structure: each bank has a
// next-free cycle, and every access occupies its bank for a fixed
// number of cycles (Table 3: read/write occupancy 1; fills occupy for
// the 8-cycle fill time). The line size is fixed at construction so the
// line→bank map is a shift plus — when the bank count is a power of
// two — a mask; Table 3's seven banks keep the modulo fallback.
type BankSet struct {
	free      []int64
	occupancy int64
	lineShift uint  // log2(lineBytes)
	bankMask  int64 // len(free)-1 when a power of two, else -1
	nbanks    int64

	// Conflicts counts accesses that had to wait for a busy bank.
	Conflicts uint64
	// BusyCycles accumulates total wait cycles (contention integral).
	BusyCycles uint64
}

// NewBankSet returns n banks with the given per-access occupancy,
// interleaved at lineBytes granularity (must be a power of two).
func NewBankSet(n, occupancy, lineBytes int) *BankSet {
	if n <= 0 || occupancy <= 0 {
		panic("memsys: bank set needs positive banks and occupancy")
	}
	b := &BankSet{
		free:      make([]int64, n),
		occupancy: int64(occupancy),
		lineShift: log2OfPow2("bank interleave", int64(lineBytes)),
		bankMask:  -1,
		nbanks:    int64(n),
	}
	if n&(n-1) == 0 {
		b.bankMask = int64(n - 1)
	}
	return b
}

// Banks returns the number of banks.
func (b *BankSet) Banks() int { return len(b.free) }

// bankFor maps a line address onto a bank (line interleaving).
func (b *BankSet) bankFor(line int64) int {
	idx := line >> b.lineShift
	if b.bankMask >= 0 {
		return int(idx & b.bankMask)
	}
	return int(idx % b.nbanks)
}

// Acquire reserves the bank serving line starting no earlier than now
// and returns the cycle at which service actually begins.
func (b *BankSet) Acquire(now, line int64) int64 {
	i := b.bankFor(line)
	start := now
	if b.free[i] > start {
		b.Conflicts++
		b.BusyCycles += uint64(b.free[i] - start)
		start = b.free[i]
	}
	b.free[i] = start + b.occupancy
	return start
}

// Extend adds extra occupancy to the bank serving line, on top of its
// current reservation — used to model the fill time of a miss. (The
// bank's state is a scalar next-free cycle, so the fill occupancy is
// charged adjacent to the triggering access rather than at the exact
// fill-return cycle; total bank occupancy per miss is preserved, which
// is what drives the contention the paper models.)
func (b *BankSet) Extend(line int64, extra int) {
	b.free[b.bankFor(line)] += int64(extra)
}
