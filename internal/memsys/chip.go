package memsys

import "clustersmt/internal/config"

// Chip bundles the per-chip memory hierarchy: the shared primary cache
// (the paper deliberately shares L1 among all clusters on the chip,
// §3.4), the L2, the shared TLB and the load MSHRs, plus the bank
// occupancy state used for contention.
type Chip struct {
	ID  int
	Cfg config.MemConfig

	L1      *Cache
	L2      *Cache
	L1Banks *BankSet
	L2Banks *BankSet
	TLB     *TLB
	MSHR    *MSHRFile

	// TLBMissStalls counts TLB miss penalties applied.
	TLBMissStalls uint64
}

// NewChip builds the hierarchy for one chip. The TLB PRNG is seeded
// from the chip id so multi-chip runs remain deterministic but not
// lock-stepped.
func NewChip(id int, cfg config.MemConfig) *Chip {
	return &Chip{
		ID:      id,
		Cfg:     cfg,
		L1:      NewCache("L1", cfg.L1SizeKB, cfg.LineBytes, cfg.L1Assoc),
		L2:      NewCache("L2", cfg.L2SizeKB, cfg.LineBytes, cfg.L2Assoc),
		L1Banks: NewBankSet(cfg.L1Banks, cfg.Occupancy, cfg.LineBytes),
		L2Banks: NewBankSet(cfg.L2Banks, cfg.Occupancy, cfg.LineBytes),
		TLB:     NewTLB(cfg.TLBEntries, uint64(id+1)*0x2545F4914F6CDD1D),
		MSHR:    NewMSHRFile(cfg.MSHRs),
	}
}

// Line returns the line address containing addr.
func (c *Chip) Line(addr int64) int64 { return addr &^ (int64(c.Cfg.LineBytes) - 1) }

// Page returns the page number containing addr.
func (c *Chip) Page(addr int64) int64 { return addr / int64(c.Cfg.PageBytes) }

// State returns the chip-level (L2, by inclusion) state of line.
func (c *Chip) State(line int64) LineState { return c.L2.Probe(line) }

// Invalidate removes line from both cache levels (remote write).
func (c *Chip) Invalidate(line int64) {
	c.L1.SetState(line, Invalid)
	c.L2.SetState(line, Invalid)
}

// Downgrade demotes a Modified line to Shared (remote read of dirty
// data); no-op if the line is not resident.
func (c *Chip) Downgrade(line int64) {
	if c.L1.Probe(line) == Modified {
		c.L1.SetState(line, Shared)
	}
	if c.L2.Probe(line) == Modified {
		c.L2.SetState(line, Shared)
	}
}

// InstallResult reports lines displaced while installing a fill.
type InstallResult struct {
	// L2Victim is a line evicted from L2 (and, by inclusion, from L1);
	// the directory must be told it left this chip, and if it was
	// Modified its writeback is the caller's to account.
	L2Victim Victim
}

// Install places line into both levels with the given state, enforcing
// inclusion (an L2 eviction also invalidates the victim in L1).
func (c *Chip) Install(line int64, st LineState) InstallResult {
	var res InstallResult
	if v := c.L2.Insert(line, st); v.Evicted {
		c.L1.SetState(v.Line, Invalid)
		res.L2Victim = v
	}
	if v := c.L1.Insert(line, st); v.Evicted && v.State == Modified {
		// By inclusion the victim is still in L2; keep its dirty state
		// there so a later L2 eviction writes it back.
		c.L2.SetState(v.Line, Modified)
	}
	return res
}

// MarkModified upgrades line to Modified in both levels (store hit).
func (c *Chip) MarkModified(line int64) {
	c.L1.SetState(line, Modified)
	c.L2.SetState(line, Modified)
	if c.L1.Probe(line) == Invalid && c.L2.Probe(line) != Invalid {
		// Store hit in L2 only: refill L1 (inclusion holds, no dir
		// interaction needed).
		c.L1.Insert(line, Modified)
	}
}
