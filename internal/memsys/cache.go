// Package memsys implements the per-chip memory hierarchy mechanics of
// §3.4/Table 3: banked set-associative L1 and L2 tag arrays with LRU
// replacement and MSI line states, a fully associative random-
// replacement TLB, MSHRs bounding outstanding loads, and bank-occupancy
// contention. Cross-chip coherence lives in package coherence.
//
// The caches track tags and states only — data values come from the
// functional front end — so "reading" a line means timing its access.
package memsys

import "fmt"

// LineState is the MSI coherence state of a cached line.
type LineState uint8

// MSI states.
const (
	Invalid LineState = iota
	Shared
	Modified
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

type way struct {
	line  int64 // line-aligned base address; valid only if state != Invalid
	state LineState
	lru   uint64 // larger = more recently used
}

// Cache is a set-associative tag array. Addresses passed in must be
// line-aligned ("line addresses"). Geometries are powers of two so set
// selection is a shift and a mask (enforced at construction).
type Cache struct {
	name      string
	sets      int
	assoc     int
	lineBytes int64
	lineShift uint  // log2(lineBytes)
	setMask   int64 // sets - 1
	ways      []way // sets*assoc, row-major by set
	// mru holds, per set, the way index last hit or filled — checked
	// first on every lookup so repeated touches of the same line skip
	// the set walk. Purely a hint: a stale value only costs the walk.
	mru  []int32
	tick uint64

	// cow marks the tag arrays (ways, mru) as shared with a forked twin;
	// the first mutating method privatizes them via own(). Scalar fields
	// (tick, stats) are copied by value at Fork time and never shared.
	cow bool

	// Stats.
	Hits, Misses, Evictions, WritebackEvictions uint64
}

// log2OfPow2 returns log2(v), panicking unless v is a positive power
// of two.
func log2OfPow2(what string, v int64) uint {
	if v <= 0 || v&(v-1) != 0 {
		panic(fmt.Sprintf("memsys: %s must be a positive power of two, got %d", what, v))
	}
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// NewCache builds a cache with the given geometry. sizeKB must divide
// evenly into sets of assoc lines, and both the line size and the
// resulting set count must be powers of two.
func NewCache(name string, sizeKB, lineBytes, assoc int) *Cache {
	lines := sizeKB * 1024 / lineBytes
	if lines%assoc != 0 {
		panic(fmt.Sprintf("memsys: %s: %dKB/%dB/%d-way does not form whole sets", name, sizeKB, lineBytes, assoc))
	}
	sets := lines / assoc
	c := &Cache{
		name:      name,
		sets:      sets,
		assoc:     assoc,
		lineBytes: int64(lineBytes),
		lineShift: log2OfPow2(name+" line size", int64(lineBytes)),
		setMask:   int64(sets - 1),
		ways:      make([]way, sets*assoc),
		mru:       make([]int32, sets),
	}
	log2OfPow2(name+" set count", int64(sets))
	return c
}

// Fork returns a copy-on-write clone of the cache: the clone shares the
// tag arrays with c until either side first mutates, at which point the
// mutator copies them (own). Counters and the LRU tick diverge freely —
// they live in the struct, which is copied by value here.
func (c *Cache) Fork() *Cache {
	c.cow = true
	cp := *c
	return &cp
}

// own privatizes the tag arrays before a mutation when they are still
// shared with a forked twin.
func (c *Cache) own() {
	if !c.cow {
		return
	}
	c.ways = append([]way(nil), c.ways...)
	c.mru = append([]int32(nil), c.mru...)
	c.cow = false
}

// Sets returns the number of sets (diagnostics).
func (c *Cache) Sets() int { return c.sets }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int64 { return c.lineBytes }

// LineAddr converts a byte address to its line address.
func (c *Cache) LineAddr(addr int64) int64 { return addr &^ (c.lineBytes - 1) }

// setIndex returns the set number holding line.
func (c *Cache) setIndex(line int64) int {
	return int((line >> c.lineShift) & c.setMask)
}

func (c *Cache) set(line int64) []way {
	s := c.setIndex(line)
	return c.ways[s*c.assoc : (s+1)*c.assoc]
}

// Lookup returns the state of line, counting a hit or miss, and updates
// LRU on hit.
func (c *Cache) Lookup(line int64) LineState {
	c.own()
	c.tick++
	si := c.setIndex(line)
	base := si * c.assoc
	if w := &c.ways[base+int(c.mru[si])]; w.state != Invalid && w.line == line {
		w.lru = c.tick
		c.Hits++
		return w.state
	}
	set := c.ways[base : base+c.assoc]
	for i := range set {
		w := &set[i]
		if w.state != Invalid && w.line == line {
			w.lru = c.tick
			c.mru[si] = int32(i)
			c.Hits++
			return w.state
		}
	}
	c.Misses++
	return Invalid
}

// FindWay returns the absolute way-array index holding line, or -1 —
// without touching stats, LRU or the MRU hint. Together with TouchHit /
// TouchMiss it lets a caller that needs an early residence check (the
// load path's MSHR gate) walk the set once instead of probing and then
// looking up.
func (c *Cache) FindWay(line int64) int {
	si := c.setIndex(line)
	base := si * c.assoc
	if w := &c.ways[base+int(c.mru[si])]; w.state != Invalid && w.line == line {
		return base + int(c.mru[si])
	}
	set := c.ways[base : base+c.assoc]
	for i := range set {
		w := &set[i]
		if w.state != Invalid && w.line == line {
			return base + i
		}
	}
	return -1
}

// TouchHit replays exactly what Lookup does on a hit at the way index
// returned by FindWay: one tick, the LRU update and the Hits count. The
// cache must not have been mutated since the FindWay call.
func (c *Cache) TouchHit(wi int) LineState {
	c.own()
	c.tick++
	w := &c.ways[wi]
	w.lru = c.tick
	c.mru[wi/c.assoc] = int32(wi % c.assoc)
	c.Hits++
	return w.state
}

// TouchMiss replays what Lookup does on a miss: one tick and the Misses
// count. It touches only value fields, so no own() is needed.
func (c *Cache) TouchMiss() {
	c.tick++
	c.Misses++
}

// Probe returns the state of line without touching LRU or stats.
func (c *Cache) Probe(line int64) LineState {
	set := c.set(line)
	for i := range set {
		w := &set[i]
		if w.state != Invalid && w.line == line {
			return w.state
		}
	}
	return Invalid
}

// SetState changes the state of a resident line; it is a no-op if the
// line is not resident. Setting Invalid invalidates.
func (c *Cache) SetState(line int64, st LineState) {
	c.own()
	set := c.set(line)
	for i := range set {
		w := &set[i]
		if w.state != Invalid && w.line == line {
			w.state = st
			return
		}
	}
}

// Victim describes a line displaced by Insert.
type Victim struct {
	Line    int64
	State   LineState
	Evicted bool
}

// Insert places line with the given state, evicting the LRU way if the
// set is full. If the line is already resident its state is updated in
// place (no eviction).
func (c *Cache) Insert(line int64, st LineState) Victim {
	c.own()
	c.tick++
	si := c.setIndex(line)
	set := c.ways[si*c.assoc : (si+1)*c.assoc]
	var free, lruIdx = -1, 0
	for i := range set {
		w := &set[i]
		if w.state != Invalid && w.line == line {
			w.state = st
			w.lru = c.tick
			c.mru[si] = int32(i)
			return Victim{}
		}
		if w.state == Invalid {
			free = i
		} else if set[i].lru < set[lruIdx].lru || set[lruIdx].state == Invalid {
			lruIdx = i
		}
	}
	if free >= 0 {
		set[free] = way{line: line, state: st, lru: c.tick}
		c.mru[si] = int32(free)
		return Victim{}
	}
	v := Victim{Line: set[lruIdx].line, State: set[lruIdx].state, Evicted: true}
	c.Evictions++
	if v.State == Modified {
		c.WritebackEvictions++
	}
	set[lruIdx] = way{line: line, state: st, lru: c.tick}
	c.mru[si] = int32(lruIdx)
	return v
}

// Resident reports how many lines are currently valid (testing aid).
func (c *Cache) Resident() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].state != Invalid {
			n++
		}
	}
	return n
}
