// Package memsys implements the per-chip memory hierarchy mechanics of
// §3.4/Table 3: banked set-associative L1 and L2 tag arrays with LRU
// replacement and MSI line states, a fully associative random-
// replacement TLB, MSHRs bounding outstanding loads, and bank-occupancy
// contention. Cross-chip coherence lives in package coherence.
//
// The caches track tags and states only — data values come from the
// functional front end — so "reading" a line means timing its access.
package memsys

import "fmt"

// LineState is the MSI coherence state of a cached line.
type LineState uint8

// MSI states.
const (
	Invalid LineState = iota
	Shared
	Modified
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

type way struct {
	line  int64 // line-aligned base address; valid only if state != Invalid
	state LineState
	lru   uint64 // larger = more recently used
}

// Cache is a set-associative tag array. Addresses passed in must be
// line-aligned ("line addresses").
type Cache struct {
	name      string
	sets      int
	assoc     int
	lineBytes int64
	ways      []way // sets*assoc, row-major by set
	tick      uint64

	// Stats.
	Hits, Misses, Evictions, WritebackEvictions uint64
}

// NewCache builds a cache with the given geometry. sizeKB must divide
// evenly into sets of assoc lines.
func NewCache(name string, sizeKB, lineBytes, assoc int) *Cache {
	lines := sizeKB * 1024 / lineBytes
	if lines%assoc != 0 {
		panic(fmt.Sprintf("memsys: %s: %dKB/%dB/%d-way does not form whole sets", name, sizeKB, lineBytes, assoc))
	}
	sets := lines / assoc
	return &Cache{
		name:      name,
		sets:      sets,
		assoc:     assoc,
		lineBytes: int64(lineBytes),
		ways:      make([]way, sets*assoc),
	}
}

// Sets returns the number of sets (diagnostics).
func (c *Cache) Sets() int { return c.sets }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int64 { return c.lineBytes }

// LineAddr converts a byte address to its line address.
func (c *Cache) LineAddr(addr int64) int64 { return addr &^ (c.lineBytes - 1) }

func (c *Cache) set(line int64) []way {
	s := int((line / c.lineBytes) % int64(c.sets))
	return c.ways[s*c.assoc : (s+1)*c.assoc]
}

// Lookup returns the state of line, counting a hit or miss, and updates
// LRU on hit.
func (c *Cache) Lookup(line int64) LineState {
	c.tick++
	set := c.set(line)
	for i := range set {
		w := &set[i]
		if w.state != Invalid && w.line == line {
			w.lru = c.tick
			c.Hits++
			return w.state
		}
	}
	c.Misses++
	return Invalid
}

// Probe returns the state of line without touching LRU or stats.
func (c *Cache) Probe(line int64) LineState {
	for i := range c.set(line) {
		w := &c.set(line)[i]
		if w.state != Invalid && w.line == line {
			return w.state
		}
	}
	return Invalid
}

// SetState changes the state of a resident line; it is a no-op if the
// line is not resident. Setting Invalid invalidates.
func (c *Cache) SetState(line int64, st LineState) {
	for i := range c.set(line) {
		w := &c.set(line)[i]
		if w.state != Invalid && w.line == line {
			if st == Invalid {
				w.state = Invalid
				return
			}
			w.state = st
			return
		}
	}
}

// Victim describes a line displaced by Insert.
type Victim struct {
	Line    int64
	State   LineState
	Evicted bool
}

// Insert places line with the given state, evicting the LRU way if the
// set is full. If the line is already resident its state is updated in
// place (no eviction).
func (c *Cache) Insert(line int64, st LineState) Victim {
	c.tick++
	set := c.set(line)
	var free, lruIdx = -1, 0
	for i := range set {
		w := &set[i]
		if w.state != Invalid && w.line == line {
			w.state = st
			w.lru = c.tick
			return Victim{}
		}
		if w.state == Invalid {
			free = i
		} else if set[i].lru < set[lruIdx].lru || set[lruIdx].state == Invalid {
			lruIdx = i
		}
	}
	if free >= 0 {
		set[free] = way{line: line, state: st, lru: c.tick}
		return Victim{}
	}
	v := Victim{Line: set[lruIdx].line, State: set[lruIdx].state, Evicted: true}
	c.Evictions++
	if v.State == Modified {
		c.WritebackEvictions++
	}
	set[lruIdx] = way{line: line, state: st, lru: c.tick}
	return v
}

// Resident reports how many lines are currently valid (testing aid).
func (c *Cache) Resident() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].state != Invalid {
			n++
		}
	}
	return n
}
