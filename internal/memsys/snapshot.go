package memsys

import (
	"fmt"
	"sort"

	"clustersmt/internal/snap"
)

// This file holds checkpoint (encode/decode) and fork (deep/COW copy)
// support for the per-chip hierarchy. Decoding always targets a freshly
// constructed object of the same geometry, so every size read from the
// stream is validated against the constructed layout: geometry is
// config-derived, never trusted from the payload.
//
// Encoding choices that matter for bit-identity:
//   - Cache tag arrays are written raw (way order, MRU hints, LRU tick),
//     so replacement decisions replay exactly.
//   - The MSHR fill heap is written as its backing array, not re-pushed:
//     two fills with equal ready cycles pop in layout order, so the heap
//     layout itself is state.
//   - TLB slots are written in slot order with the PRNG cursor; the
//     page->slot map is rebuilt from the slots.

// EncodeSnap writes the cache's tag arrays, LRU tick and counters.
func (c *Cache) EncodeSnap(w *snap.Writer) {
	w.Int(len(c.ways))
	for i := range c.ways {
		wy := &c.ways[i]
		w.I64(wy.line)
		w.U8(uint8(wy.state))
		w.U64(wy.lru)
	}
	for _, m := range c.mru {
		w.U32(uint32(m))
	}
	w.U64(c.tick)
	w.U64(c.Hits)
	w.U64(c.Misses)
	w.U64(c.Evictions)
	w.U64(c.WritebackEvictions)
}

// DecodeSnap overlays state produced by EncodeSnap onto a cache of the
// same geometry.
func (c *Cache) DecodeSnap(r *snap.Reader) {
	c.own()
	if n := r.Int(); n != len(c.ways) {
		r.Fail(fmt.Errorf("memsys: %s: snapshot has %d ways, cache has %d", c.name, n, len(c.ways)))
		return
	}
	for i := range c.ways {
		wy := &c.ways[i]
		wy.line = r.I64()
		st := LineState(r.U8())
		if st > Modified {
			r.Fail(fmt.Errorf("memsys: %s: invalid line state %d", c.name, st))
			return
		}
		wy.state = st
		wy.lru = r.U64()
	}
	for i := range c.mru {
		m := int32(r.U32())
		if m < 0 || int(m) >= c.assoc {
			r.Fail(fmt.Errorf("memsys: %s: MRU hint %d out of range", c.name, m))
			return
		}
		c.mru[i] = m
	}
	c.tick = r.U64()
	c.Hits = r.U64()
	c.Misses = r.U64()
	c.Evictions = r.U64()
	c.WritebackEvictions = r.U64()
}

// Clone returns an independent deep copy of the MSHR file, including
// the raw fill-heap layout.
func (m *MSHRFile) Clone() *MSHRFile {
	cp := *m
	cp.pending = make(map[int64]int64, len(m.pending))
	for k, v := range m.pending {
		cp.pending[k] = v
	}
	cp.fills = append(fillHeap(nil), m.fills...)
	return &cp
}

// EncodeSnap writes capacity, the pending map (sorted by line), the raw
// fill-heap array and the counters.
func (m *MSHRFile) EncodeSnap(w *snap.Writer) {
	w.Int(m.cap)
	lines := make([]int64, 0, len(m.pending))
	for l := range m.pending {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.Int(len(lines))
	for _, l := range lines {
		w.I64(l)
		w.I64(m.pending[l])
	}
	w.Int(len(m.fills))
	for _, f := range m.fills {
		w.I64(f.ready)
		w.I64(f.line)
	}
	w.U64(m.Merges)
	w.U64(m.Rejected)
	w.U64(m.Allocated)
}

// DecodeSnap overlays state produced by EncodeSnap onto a fresh file of
// the same capacity.
func (m *MSHRFile) DecodeSnap(r *snap.Reader) {
	if c := r.Int(); c != m.cap {
		r.Fail(fmt.Errorf("memsys: snapshot MSHR capacity %d, file has %d", c, m.cap))
		return
	}
	np := r.Int()
	if np < 0 || np > r.Remaining() {
		r.Fail(fmt.Errorf("memsys: corrupt MSHR pending count %d: %w", np, snap.ErrTruncated))
		return
	}
	for i := 0; i < np; i++ {
		line := r.I64()
		ready := r.I64()
		if r.Err() != nil {
			return
		}
		m.pending[line] = ready
	}
	nf := r.Int()
	if nf < 0 || nf > r.Remaining() {
		r.Fail(fmt.Errorf("memsys: corrupt MSHR fill count %d: %w", nf, snap.ErrTruncated))
		return
	}
	m.fills = m.fills[:0]
	for i := 0; i < nf; i++ {
		m.fills = append(m.fills, fill{ready: r.I64(), line: r.I64()})
	}
	m.Merges = r.U64()
	m.Rejected = r.U64()
	m.Allocated = r.U64()
}

// Clone returns an independent deep copy of the TLB.
func (t *TLB) Clone() *TLB {
	cp := *t
	cp.pages = make(map[int64]int, len(t.pages))
	for k, v := range t.pages {
		cp.pages[k] = v
	}
	cp.slots = append([]int64(nil), t.slots...)
	return &cp
}

// EncodeSnap writes the slot array in slot order, the PRNG cursor and
// the counters; the page map is rebuilt on decode.
func (t *TLB) EncodeSnap(w *snap.Writer) {
	w.Int(t.entries)
	w.Int(len(t.slots))
	for _, p := range t.slots {
		w.I64(p)
	}
	w.U64(t.rng)
	w.U64(t.Hit)
	w.U64(t.Miss)
}

// DecodeSnap overlays state produced by EncodeSnap onto a fresh TLB of
// the same capacity.
func (t *TLB) DecodeSnap(r *snap.Reader) {
	if e := r.Int(); e != t.entries {
		r.Fail(fmt.Errorf("memsys: snapshot TLB capacity %d, TLB has %d", e, t.entries))
		return
	}
	n := r.Int()
	if n < 0 || n > t.entries {
		r.Fail(fmt.Errorf("memsys: corrupt TLB slot count %d", n))
		return
	}
	t.slots = t.slots[:0]
	for i := 0; i < n; i++ {
		p := r.I64()
		if r.Err() != nil {
			return
		}
		if _, dup := t.pages[p]; dup {
			r.Fail(fmt.Errorf("memsys: duplicate TLB page %d", p))
			return
		}
		t.slots = append(t.slots, p)
		t.pages[p] = i
	}
	rng := r.U64()
	if rng == 0 {
		r.Fail(fmt.Errorf("memsys: zero TLB PRNG state"))
		return
	}
	t.rng = rng
	t.Hit = r.U64()
	t.Miss = r.U64()
}

// Clone returns an independent deep copy of the bank set.
func (b *BankSet) Clone() *BankSet {
	cp := *b
	cp.free = append([]int64(nil), b.free...)
	return &cp
}

// EncodeSnap writes the per-bank next-free cycles and the contention
// counters.
func (b *BankSet) EncodeSnap(w *snap.Writer) {
	w.Int(len(b.free))
	for _, f := range b.free {
		w.I64(f)
	}
	w.U64(b.Conflicts)
	w.U64(b.BusyCycles)
}

// DecodeSnap overlays state produced by EncodeSnap onto a fresh set of
// the same geometry.
func (b *BankSet) DecodeSnap(r *snap.Reader) {
	if n := r.Int(); n != len(b.free) {
		r.Fail(fmt.Errorf("memsys: snapshot has %d banks, set has %d", n, len(b.free)))
		return
	}
	for i := range b.free {
		b.free[i] = r.I64()
	}
	b.Conflicts = r.U64()
	b.BusyCycles = r.U64()
}

// Fork returns a clone of the chip: the cache tag arrays are shared
// copy-on-write (see Cache.Fork); the TLB, MSHRs and bank state are
// small and copied eagerly.
func (c *Chip) Fork() *Chip {
	cp := *c
	cp.L1 = c.L1.Fork()
	cp.L2 = c.L2.Fork()
	cp.L1Banks = c.L1Banks.Clone()
	cp.L2Banks = c.L2Banks.Clone()
	cp.TLB = c.TLB.Clone()
	cp.MSHR = c.MSHR.Clone()
	return &cp
}

// EncodeSnap writes the whole chip hierarchy.
func (c *Chip) EncodeSnap(w *snap.Writer) {
	c.L1.EncodeSnap(w)
	c.L2.EncodeSnap(w)
	c.L1Banks.EncodeSnap(w)
	c.L2Banks.EncodeSnap(w)
	c.TLB.EncodeSnap(w)
	c.MSHR.EncodeSnap(w)
	w.U64(c.TLBMissStalls)
}

// DecodeSnap overlays a chip encoded by EncodeSnap onto a freshly built
// chip of the same configuration.
func (c *Chip) DecodeSnap(r *snap.Reader) {
	c.L1.DecodeSnap(r)
	c.L2.DecodeSnap(r)
	c.L1Banks.DecodeSnap(r)
	c.L2Banks.DecodeSnap(r)
	c.TLB.DecodeSnap(r)
	c.MSHR.DecodeSnap(r)
	c.TLBMissStalls = r.U64()
}
