// Package interp is the functional front end of the simulator: it
// executes programs instruction-by-instruction over a shared memory
// image and yields the dynamic-instruction events that the timing back
// end consumes. It plays the role MINT played for the paper's
// simulator: the back end never recomputes values, it only times them.
package interp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"clustersmt/internal/prog"
)

const (
	pageShift = 12 // 4 KiB pages
	pageBytes = 1 << pageShift
	pageWords = pageBytes / prog.WordSize
)

// Memory is a sparse, paged, word-granular shared address space.
//
// The page table itself is goroutine-safe (guarded by mu), but the
// Memory's own Load/Store/Swap share one last-touched-page cache and
// must stay on a single goroutine. Concurrent executors give each
// thread its own View, whose private cache makes word accesses
// lock-free after the first touch of a page; word-level data races are
// then the program's responsibility (the timing simulator's parallel
// mode orders racing accesses, see internal/core).
//
// Fork clones the address space copy-on-write: parent and child share
// page frames until either side first writes a shared page, at which
// point the writer privatizes its copy under the page-table lock.
// Because writers always privatize before writing, a shared frame is
// never mutated; stale cached pointers are invalidated through gen, a
// generation counter bumped by every Fork and every privatization.
type Memory struct {
	mu    sync.RWMutex
	pages map[int64]*[pageWords]uint64
	cow   map[int64]struct{} // page numbers whose frame is shared with another Memory
	gen   atomic.Uint64      // bumped on Fork and on every copy-on-write break

	// Last-touched page, so sequential and strided access streams skip
	// the paged-map lookup entirely. lastW records whether the cached
	// frame was obtained for writing (i.e. is known private); lastGen is
	// the gen value the cache was filled under.
	lastPN  int64
	lastPG  *[pageWords]uint64
	lastW   bool
	lastGen uint64
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[int64]*[pageWords]uint64), lastPN: -1}
}

// LoadImage installs a program's initial data segment.
func (m *Memory) LoadImage(p *prog.Program) {
	for addr, v := range p.Init {
		m.Store(addr, v)
	}
}

// Fork returns a copy-on-write clone of the address space. Every
// currently allocated frame becomes shared between parent and child;
// the first write to a shared page on either side privatizes it there.
// Fork must not race with accesses to m (the simulator only forks a
// paused instance).
func (m *Memory) Fork() *Memory {
	m.mu.Lock()
	defer m.mu.Unlock()
	child := &Memory{
		pages:  make(map[int64]*[pageWords]uint64, len(m.pages)),
		cow:    make(map[int64]struct{}, len(m.pages)),
		lastPN: -1,
	}
	if m.cow == nil {
		m.cow = make(map[int64]struct{}, len(m.pages))
	}
	for pn, pg := range m.pages {
		child.pages[pn] = pg
		child.cow[pn] = struct{}{}
		m.cow[pn] = struct{}{}
	}
	m.gen.Add(1) // cached frame pointers are no longer known-private
	return child
}

// lookup returns the page frame for page number pn. When write is set
// the returned frame is private and writable: a missing page is
// allocated and a copy-on-write page is privatized first. For reads a
// shared frame may be returned; it is immutable until privatized, and
// privatization never mutates the old frame, so a read-cached pointer
// only goes stale (missing later writes), which gen detects.
func (m *Memory) lookup(pn int64, write bool) *[pageWords]uint64 {
	m.mu.RLock()
	pg := m.pages[pn]
	shared := false
	if write && pg != nil && m.cow != nil {
		_, shared = m.cow[pn]
	}
	m.mu.RUnlock()
	if !write || (pg != nil && !shared) {
		return pg
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	pg = m.pages[pn]
	switch {
	case pg == nil:
		pg = new([pageWords]uint64)
		m.pages[pn] = pg
	default:
		if _, s := m.cow[pn]; s {
			cp := *pg
			pg = &cp
			m.pages[pn] = pg
			delete(m.cow, pn)
			m.gen.Add(1)
		}
	}
	return pg
}

func (m *Memory) page(addr int64, write bool) *[pageWords]uint64 {
	pn := addr >> pageShift
	if g := m.gen.Load(); g != m.lastGen {
		m.lastGen, m.lastPN, m.lastPG = g, -1, nil
	}
	if pn == m.lastPN && (!write || m.lastW) {
		return m.lastPG
	}
	pg := m.lookup(pn, write)
	if pg != nil {
		m.lastPN, m.lastPG, m.lastW = pn, pg, write
	}
	return pg
}

func checkAligned(addr int64) {
	if addr%prog.WordSize != 0 {
		panic(fmt.Sprintf("interp: unaligned access at %#x", addr))
	}
	if addr < 0 {
		panic(fmt.Sprintf("interp: negative address %#x", addr))
	}
}

// Load returns the word at addr (zero if never written). Panics on
// unaligned or negative addresses: those are always kernel bugs.
func (m *Memory) Load(addr int64) uint64 {
	checkAligned(addr)
	pg := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[(addr%pageBytes)/prog.WordSize]
}

// Store writes the word at addr.
func (m *Memory) Store(addr int64, v uint64) {
	checkAligned(addr)
	m.page(addr, true)[(addr%pageBytes)/prog.WordSize] = v
}

// Swap atomically exchanges the word at addr with v, returning the old
// value. (Atomicity is trivial in the single-goroutine simulator; the
// method exists so call sites document their intent.)
func (m *Memory) Swap(addr int64, v uint64) uint64 {
	old := m.Load(addr)
	m.Store(addr, v)
	return old
}

// Pages reports how many pages have been touched (diagnostics).
func (m *Memory) Pages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// SharedPages reports how many pages are currently copy-on-write shared
// with another Memory (diagnostics and tests).
func (m *Memory) SharedPages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.cow)
}

// View is a per-goroutine handle on a shared Memory: it carries its own
// last-touched-page cache, so concurrent threads never contend except
// on the first touch of a freshly allocated page. Obtain one with
// NewView; the zero value is not usable.
type View struct {
	mem    *Memory
	lastPN int64
	lastPG *[pageWords]uint64
	lastW  bool
	gen    uint64
}

// NewView returns a fresh view of the address space.
func (m *Memory) NewView() View { return View{mem: m, lastPN: -1, gen: m.gen.Load()} }

func (v *View) page(addr int64, write bool) *[pageWords]uint64 {
	pn := addr >> pageShift
	if g := v.mem.gen.Load(); g != v.gen {
		v.gen, v.lastPN, v.lastPG = g, -1, nil
	}
	if pn == v.lastPN && (!write || v.lastW) {
		return v.lastPG
	}
	pg := v.mem.lookup(pn, write)
	if pg != nil {
		v.lastPN, v.lastPG, v.lastW = pn, pg, write
	}
	return pg
}

// Load returns the word at addr (zero if never written).
func (v *View) Load(addr int64) uint64 {
	checkAligned(addr)
	pg := v.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[(addr%pageBytes)/prog.WordSize]
}

// Store writes the word at addr.
func (v *View) Store(addr int64, val uint64) {
	checkAligned(addr)
	v.page(addr, true)[(addr%pageBytes)/prog.WordSize] = val
}

// Swap exchanges the word at addr with val, returning the old value.
// Atomicity with respect to other views is the caller's job: the
// timing simulator orders all granted sync operations (see
// internal/core), so by the time Swap executes it has exclusive use of
// the word.
func (v *View) Swap(addr int64, val uint64) uint64 {
	old := v.Load(addr)
	v.Store(addr, val)
	return old
}
