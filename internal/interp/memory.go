// Package interp is the functional front end of the simulator: it
// executes programs instruction-by-instruction over a shared memory
// image and yields the dynamic-instruction events that the timing back
// end consumes. It plays the role MINT played for the paper's
// simulator: the back end never recomputes values, it only times them.
package interp

import (
	"fmt"
	"sync"

	"clustersmt/internal/prog"
)

const (
	pageShift = 12 // 4 KiB pages
	pageBytes = 1 << pageShift
	pageWords = pageBytes / prog.WordSize
)

// Memory is a sparse, paged, word-granular shared address space.
//
// The page table itself is goroutine-safe (guarded by mu; pages are
// never removed, so cached page pointers stay valid forever), but the
// Memory's own Load/Store/Swap share one last-touched-page cache and
// must stay on a single goroutine. Concurrent executors give each
// thread its own View, whose private cache makes word accesses
// lock-free after the first touch of a page; word-level data races are
// then the program's responsibility (the timing simulator's parallel
// mode orders racing accesses, see internal/core).
type Memory struct {
	mu    sync.RWMutex
	pages map[int64]*[pageWords]uint64

	// Last-touched page, so sequential and strided access streams skip
	// the paged-map lookup entirely.
	lastPN int64
	lastPG *[pageWords]uint64
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[int64]*[pageWords]uint64), lastPN: -1}
}

// LoadImage installs a program's initial data segment.
func (m *Memory) LoadImage(p *prog.Program) {
	for addr, v := range p.Init {
		m.Store(addr, v)
	}
}

// lookup returns the page frame for page number pn, allocating it when
// create is set. Pages are only ever added, so a returned pointer may
// be cached indefinitely.
func (m *Memory) lookup(pn int64, create bool) *[pageWords]uint64 {
	m.mu.RLock()
	pg := m.pages[pn]
	m.mu.RUnlock()
	if pg == nil && create {
		m.mu.Lock()
		if pg = m.pages[pn]; pg == nil {
			pg = new([pageWords]uint64)
			m.pages[pn] = pg
		}
		m.mu.Unlock()
	}
	return pg
}

func (m *Memory) page(addr int64, create bool) *[pageWords]uint64 {
	pn := addr >> pageShift
	if pn == m.lastPN {
		return m.lastPG
	}
	pg := m.lookup(pn, create)
	if pg != nil {
		m.lastPN, m.lastPG = pn, pg
	}
	return pg
}

func checkAligned(addr int64) {
	if addr%prog.WordSize != 0 {
		panic(fmt.Sprintf("interp: unaligned access at %#x", addr))
	}
	if addr < 0 {
		panic(fmt.Sprintf("interp: negative address %#x", addr))
	}
}

// Load returns the word at addr (zero if never written). Panics on
// unaligned or negative addresses: those are always kernel bugs.
func (m *Memory) Load(addr int64) uint64 {
	checkAligned(addr)
	pg := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[(addr%pageBytes)/prog.WordSize]
}

// Store writes the word at addr.
func (m *Memory) Store(addr int64, v uint64) {
	checkAligned(addr)
	m.page(addr, true)[(addr%pageBytes)/prog.WordSize] = v
}

// Swap atomically exchanges the word at addr with v, returning the old
// value. (Atomicity is trivial in the single-goroutine simulator; the
// method exists so call sites document their intent.)
func (m *Memory) Swap(addr int64, v uint64) uint64 {
	old := m.Load(addr)
	m.Store(addr, v)
	return old
}

// Pages reports how many pages have been touched (diagnostics).
func (m *Memory) Pages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// View is a per-goroutine handle on a shared Memory: it carries its own
// last-touched-page cache, so concurrent threads never contend except
// on the first touch of a freshly allocated page. Obtain one with
// NewView; the zero value is not usable.
type View struct {
	mem    *Memory
	lastPN int64
	lastPG *[pageWords]uint64
}

// NewView returns a fresh view of the address space.
func (m *Memory) NewView() View { return View{mem: m, lastPN: -1} }

func (v *View) page(addr int64, create bool) *[pageWords]uint64 {
	pn := addr >> pageShift
	if pn == v.lastPN {
		return v.lastPG
	}
	pg := v.mem.lookup(pn, create)
	if pg != nil {
		v.lastPN, v.lastPG = pn, pg
	}
	return pg
}

// Load returns the word at addr (zero if never written).
func (v *View) Load(addr int64) uint64 {
	checkAligned(addr)
	pg := v.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[(addr%pageBytes)/prog.WordSize]
}

// Store writes the word at addr.
func (v *View) Store(addr int64, val uint64) {
	checkAligned(addr)
	v.page(addr, true)[(addr%pageBytes)/prog.WordSize] = val
}

// Swap exchanges the word at addr with val, returning the old value.
// Atomicity with respect to other views is the caller's job: the
// timing simulator orders all granted sync operations (see
// internal/core), so by the time Swap executes it has exclusive use of
// the word.
func (v *View) Swap(addr int64, val uint64) uint64 {
	old := v.Load(addr)
	v.Store(addr, val)
	return old
}
