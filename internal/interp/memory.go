// Package interp is the functional front end of the simulator: it
// executes programs instruction-by-instruction over a shared memory
// image and yields the dynamic-instruction events that the timing back
// end consumes. It plays the role MINT played for the paper's
// simulator: the back end never recomputes values, it only times them.
package interp

import (
	"fmt"

	"clustersmt/internal/prog"
)

const (
	pageShift = 12 // 4 KiB pages
	pageBytes = 1 << pageShift
	pageWords = pageBytes / prog.WordSize
)

// Memory is a sparse, paged, word-granular shared address space. It is
// not safe for concurrent use; the simulator is single-goroutine by
// design (see DESIGN.md).
type Memory struct {
	pages map[int64]*[pageWords]uint64

	// Last-touched page, so sequential and strided access streams skip
	// the paged-map lookup entirely.
	lastPN int64
	lastPG *[pageWords]uint64
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[int64]*[pageWords]uint64), lastPN: -1}
}

// LoadImage installs a program's initial data segment.
func (m *Memory) LoadImage(p *prog.Program) {
	for addr, v := range p.Init {
		m.Store(addr, v)
	}
}

func (m *Memory) page(addr int64, create bool) *[pageWords]uint64 {
	pn := addr >> pageShift
	if pn == m.lastPN {
		return m.lastPG
	}
	pg := m.pages[pn]
	if pg == nil && create {
		pg = new([pageWords]uint64)
		m.pages[pn] = pg
	}
	if pg != nil {
		m.lastPN, m.lastPG = pn, pg
	}
	return pg
}

func checkAligned(addr int64) {
	if addr%prog.WordSize != 0 {
		panic(fmt.Sprintf("interp: unaligned access at %#x", addr))
	}
	if addr < 0 {
		panic(fmt.Sprintf("interp: negative address %#x", addr))
	}
}

// Load returns the word at addr (zero if never written). Panics on
// unaligned or negative addresses: those are always kernel bugs.
func (m *Memory) Load(addr int64) uint64 {
	checkAligned(addr)
	pg := m.page(addr, false)
	if pg == nil {
		return 0
	}
	return pg[(addr%pageBytes)/prog.WordSize]
}

// Store writes the word at addr.
func (m *Memory) Store(addr int64, v uint64) {
	checkAligned(addr)
	m.page(addr, true)[(addr%pageBytes)/prog.WordSize] = v
}

// Swap atomically exchanges the word at addr with v, returning the old
// value. (Atomicity is trivial in the single-goroutine simulator; the
// method exists so call sites document their intent.)
func (m *Memory) Swap(addr int64, v uint64) uint64 {
	old := m.Load(addr)
	m.Store(addr, v)
	return old
}

// Pages reports how many pages have been touched (diagnostics).
func (m *Memory) Pages() int { return len(m.pages) }
