package interp

import (
	"math"
	"testing"
	"testing/quick"

	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

func buildAndRun(t *testing.T, build func(b *prog.Builder)) (*Thread, *Memory) {
	t.Helper()
	b := prog.NewBuilder("t")
	build(b)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	mem.LoadImage(p)
	th := NewThread(0, p, mem)
	for !th.Halted {
		th.Step()
		if th.Retired > 1_000_000 {
			t.Fatal("runaway program")
		}
	}
	return th, mem
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Store(0x1000, 42)
	if got := m.Load(0x1000); got != 42 {
		t.Fatalf("load = %d", got)
	}
	if got := m.Load(0x2000); got != 0 {
		t.Fatalf("untouched load = %d, want 0", got)
	}
}

func TestMemoryUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on unaligned store")
		}
	}()
	NewMemory().Store(3, 1)
}

func TestMemorySwap(t *testing.T) {
	m := NewMemory()
	m.Store(64, 7)
	if old := m.Swap(64, 9); old != 7 {
		t.Fatalf("swap old = %d", old)
	}
	if got := m.Load(64); got != 9 {
		t.Fatalf("after swap = %d", got)
	}
}

func TestMemoryPropertyLastWriteWins(t *testing.T) {
	m := NewMemory()
	f := func(addrs []uint16, vals []uint64) bool {
		last := map[int64]uint64{}
		for i, a := range addrs {
			if i >= len(vals) {
				break
			}
			addr := int64(a) * 8
			m.Store(addr, vals[i])
			last[addr] = vals[i]
		}
		for a, v := range last {
			if m.Load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithmetic(t *testing.T) {
	th, _ := buildAndRun(t, func(b *prog.Builder) {
		b.Li(1, 20)
		b.Li(2, 3)
		b.Add(3, 1, 2)   // 23
		b.Sub(4, 1, 2)   // 17
		b.Mul(5, 1, 2)   // 60
		b.Div(6, 1, 2)   // 6
		b.Rem(7, 1, 2)   // 2
		b.Slt(8, 2, 1)   // 1
		b.Shli(9, 2, 4)  // 48
		b.Shri(10, 1, 2) // 5
	})
	want := map[isa.Reg]uint64{3: 23, 4: 17, 5: 60, 6: 6, 7: 2, 8: 1, 9: 48, 10: 5}
	for r, v := range want {
		if th.Int[r] != v {
			t.Errorf("r%d = %d, want %d", r, th.Int[r], v)
		}
	}
}

func TestDivByZeroYieldsZero(t *testing.T) {
	th, _ := buildAndRun(t, func(b *prog.Builder) {
		b.Li(1, 5)
		b.Div(2, 1, 0)
		b.Rem(3, 1, 0)
	})
	if th.Int[2] != 0 || th.Int[3] != 0 {
		t.Errorf("div/rem by zero = %d/%d, want 0/0", th.Int[2], th.Int[3])
	}
}

func TestRegZeroIsImmutable(t *testing.T) {
	th, _ := buildAndRun(t, func(b *prog.Builder) {
		b.Li(0, 99)
		b.Addi(1, 0, 1)
	})
	if th.Int[0] != 0 {
		t.Fatalf("r0 = %d, want 0", th.Int[0])
	}
	if th.Int[1] != 1 {
		t.Fatalf("r1 = %d, want 1", th.Int[1])
	}
}

func TestLoopSum(t *testing.T) {
	// sum 0..9 via a counted loop.
	th, _ := buildAndRun(t, func(b *prog.Builder) {
		b.Li(1, 0)  // i
		b.Li(2, 10) // bound
		b.Li(3, 0)  // sum
		b.CountedLoop(1, 2, func() {
			b.Add(3, 3, 1)
		})
	})
	if th.Int[3] != 45 {
		t.Fatalf("sum = %d, want 45", th.Int[3])
	}
}

func TestFloatOps(t *testing.T) {
	th, _ := buildAndRun(t, func(b *prog.Builder) {
		b.Fli(1, 1.5)
		b.Fli(2, 2.0)
		b.Fadd(3, 1, 2) // 3.5
		b.Fsub(4, 2, 1) // 0.5
		b.Fmul(5, 1, 2) // 3.0
		b.Fdiv(6, 2, 1) // 1.333...
		b.Fneg(7, 1)    // -1.5
		b.Fcmp(8, 1, 2) // 1
		b.Li(9, 7)
		b.Fcvt(10, 9) // 7.0
	})
	checks := map[isa.Reg]float64{3: 3.5, 4: 0.5, 5: 3.0, 6: 2.0 / 1.5, 7: -1.5, 10: 7.0}
	for r, v := range checks {
		if math.Abs(th.FP[r]-v) > 1e-12 {
			t.Errorf("f%d = %g, want %g", r, th.FP[r], v)
		}
	}
	if th.Int[8] != 1 {
		t.Errorf("fcmp = %d, want 1", th.Int[8])
	}
}

func TestLoadStore(t *testing.T) {
	th, mem := buildAndRun(t, func(b *prog.Builder) {
		a := b.Global("a", 4)
		b.Li(1, 77)
		b.St(1, 0, a) // a[0] = 77
		b.Ld(2, 0, a) // r2 = 77
		b.Fli(3, 9.5)
		b.Stf(3, 0, a+8) // a[1] = 9.5
		b.Ldf(4, 0, a+8) // f4 = 9.5
	})
	if th.Int[2] != 77 {
		t.Errorf("r2 = %d", th.Int[2])
	}
	if th.FP[4] != 9.5 {
		t.Errorf("f4 = %g", th.FP[4])
	}
	if mem.Load(prog.DataBase) != 77 {
		t.Errorf("memory a[0] = %d", mem.Load(prog.DataBase))
	}
}

func TestJalJr(t *testing.T) {
	th, _ := buildAndRun(t, func(b *prog.Builder) {
		b.Jal(isa.RegRA, "fn") // call
		b.Li(2, 1)             // executed after return
		b.Jump("end")
		b.Label("fn")
		b.Li(1, 42)
		b.Jr(isa.RegRA)
		b.Label("end")
	})
	if th.Int[1] != 42 || th.Int[2] != 1 {
		t.Fatalf("r1=%d r2=%d, want 42,1", th.Int[1], th.Int[2])
	}
}

func TestDynInstrBranchEvents(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Li(1, 1)
	b.Beq(1, 0, "skip") // not taken
	b.Bne(1, 0, "skip") // taken
	b.Nop()             // skipped
	b.Label("skip")
	b.Halt()
	p := b.MustBuild()
	mem := NewMemory()
	th := NewThread(0, p, mem)

	th.Step() // li
	d := th.Step()
	if d.Taken || !d.IsBranch() {
		t.Fatalf("beq event wrong: %+v", d)
	}
	d = th.Step()
	if !d.Taken {
		t.Fatalf("bne should be taken: %+v", d)
	}
	if d.Target != 4 {
		t.Fatalf("bne target = %d, want 4", d.Target)
	}
}

func TestThreadStacksDisjoint(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Global("x", 1)
	b.Halt()
	p := b.MustBuild()
	mem := NewMemory()
	t0 := NewThread(0, p, mem)
	t1 := NewThread(1, p, mem)
	if t0.Int[isa.RegSP] == t1.Int[isa.RegSP] {
		t.Fatal("thread stacks overlap")
	}
	if t0.Int[isa.RegTID] != 0 || t1.Int[isa.RegTID] != 1 {
		t.Fatal("TID registers wrong")
	}
}

func TestPeekOnHaltedPanics(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Halt()
	p := b.MustBuild()
	th := NewThread(0, p, NewMemory())
	th.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	th.Peek()
}

func TestSwapInstr(t *testing.T) {
	th, mem := buildAndRun(t, func(b *prog.Builder) {
		a := b.GlobalWords("l", []uint64{5})
		b.Li(1, 1)
		b.Swap(2, 0, 1, a) // r2 = old (5), mem = 1
	})
	if th.Int[2] != 5 {
		t.Errorf("swap old = %d", th.Int[2])
	}
	if mem.Load(prog.DataBase) != 1 {
		t.Errorf("after swap mem = %d", mem.Load(prog.DataBase))
	}
}
