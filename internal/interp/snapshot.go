package interp

import (
	"fmt"
	"sort"

	"clustersmt/internal/snap"
)

// This file holds the checkpoint support for the functional front end:
// raw page-image encoding for Memory and architectural-state encoding
// for Thread. Field order must stay in lockstep between Encode and
// Decode pairs; the envelope version in internal/core guards layout
// changes.

// EncodeSnap writes the full page image, sorted by page number for a
// stable byte stream.
func (m *Memory) EncodeSnap(w *snap.Writer) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	pns := make([]int64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	w.Int(len(pns))
	for _, pn := range pns {
		w.I64(pn)
		pg := m.pages[pn]
		for _, word := range pg {
			w.U64(word)
		}
	}
}

// DecodeSnap installs a page image produced by EncodeSnap into m, which
// must be freshly created (existing pages are not cleared).
func (m *Memory) DecodeSnap(r *snap.Reader) {
	n := r.Int()
	if n < 0 || n > r.Remaining() {
		r.Fail(fmt.Errorf("interp: corrupt page count %d: %w", n, snap.ErrTruncated))
		return
	}
	for i := 0; i < n; i++ {
		pn := r.I64()
		if r.Err() != nil {
			return
		}
		pg := new([pageWords]uint64)
		for j := range pg {
			pg[j] = r.U64()
		}
		if r.Err() != nil {
			return
		}
		m.pages[pn] = pg
	}
}

// EncodeArch writes the thread's architectural state: PC, register
// files, halt flag and retired-instruction count.
func (t *Thread) EncodeArch(w *snap.Writer) {
	w.I64(t.PC)
	for _, v := range t.Int {
		w.U64(v)
	}
	for _, v := range t.FP {
		w.F64(v)
	}
	w.Bool(t.Halted)
	w.U64(t.Retired)
}

// DecodeArch overlays architectural state produced by EncodeArch onto
// t. The PC is validated against the thread's program; everything else
// is opaque register content.
func (t *Thread) DecodeArch(r *snap.Reader) {
	pc := r.I64()
	for i := range t.Int {
		t.Int[i] = r.U64()
	}
	for i := range t.FP {
		t.FP[i] = r.F64()
	}
	t.Halted = r.Bool()
	t.Retired = r.U64()
	if r.Err() != nil {
		return
	}
	// A halted thread's PC legitimately rests one past the instruction
	// that halted it; a running thread's must address real code.
	limit := int64(len(t.Prog.Code))
	if !t.Halted {
		limit--
	}
	if pc < 0 || pc > limit {
		r.Fail(fmt.Errorf("interp: thread %d: restored PC %d out of range", t.ID, pc))
		return
	}
	t.PC = pc
}

// Rebind points the thread at a different Memory (a copy-on-write fork
// of the one it was created on), giving it a fresh private view.
func (t *Thread) Rebind(mem *Memory) {
	t.Mem = mem
	t.view = mem.NewView()
}
