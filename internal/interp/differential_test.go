package interp

// Differential testing: random straight-line programs are executed both
// by the functional interpreter and by a tiny independent Go evaluator;
// architectural state must match exactly. This catches semantics bugs
// in the interpreter that handwritten unit tests would miss.

import (
	"math"
	"math/rand"
	"testing"

	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// miniState is the independent evaluator's architectural state.
type miniState struct {
	intr [isa.NumIntRegs]int64
	fpr  [isa.NumFPRegs]float64
	mem  map[int64]uint64
}

func (m *miniState) load(addr int64) uint64 { return m.mem[addr] }
func (m *miniState) store(addr int64, v uint64) {
	m.mem[addr] = v
}

func (m *miniState) wInt(r isa.Reg, v int64) {
	if r != isa.RegZero {
		m.intr[r] = v
	}
}

// eval executes one instruction on the mini evaluator. Only the opcode
// subset the generator emits is handled.
func (m *miniState) eval(in isa.Instr) {
	switch in.Op {
	case isa.OpAdd:
		m.wInt(in.RD, m.intr[in.RS1]+m.intr[in.RS2])
	case isa.OpSub:
		m.wInt(in.RD, m.intr[in.RS1]-m.intr[in.RS2])
	case isa.OpAnd:
		m.wInt(in.RD, m.intr[in.RS1]&m.intr[in.RS2])
	case isa.OpOr:
		m.wInt(in.RD, m.intr[in.RS1]|m.intr[in.RS2])
	case isa.OpXor:
		m.wInt(in.RD, m.intr[in.RS1]^m.intr[in.RS2])
	case isa.OpSlt:
		v := int64(0)
		if m.intr[in.RS1] < m.intr[in.RS2] {
			v = 1
		}
		m.wInt(in.RD, v)
	case isa.OpMul:
		m.wInt(in.RD, m.intr[in.RS1]*m.intr[in.RS2])
	case isa.OpDiv:
		if m.intr[in.RS2] == 0 {
			m.wInt(in.RD, 0)
		} else {
			m.wInt(in.RD, m.intr[in.RS1]/m.intr[in.RS2])
		}
	case isa.OpRem:
		if m.intr[in.RS2] == 0 {
			m.wInt(in.RD, 0)
		} else {
			m.wInt(in.RD, m.intr[in.RS1]%m.intr[in.RS2])
		}
	case isa.OpAddi:
		m.wInt(in.RD, m.intr[in.RS1]+in.Imm)
	case isa.OpSlti:
		v := int64(0)
		if m.intr[in.RS1] < in.Imm {
			v = 1
		}
		m.wInt(in.RD, v)
	case isa.OpShli:
		m.wInt(in.RD, m.intr[in.RS1]<<uint(in.Imm&63))
	case isa.OpShri:
		m.wInt(in.RD, int64(uint64(m.intr[in.RS1])>>uint(in.Imm&63)))
	case isa.OpFadd:
		m.fpr[in.FD] = m.fpr[in.FS1] + m.fpr[in.FS2]
	case isa.OpFsub:
		m.fpr[in.FD] = m.fpr[in.FS1] - m.fpr[in.FS2]
	case isa.OpFmul:
		m.fpr[in.FD] = m.fpr[in.FS1] * m.fpr[in.FS2]
	case isa.OpFdiv:
		m.fpr[in.FD] = m.fpr[in.FS1] / m.fpr[in.FS2]
	case isa.OpFneg:
		m.fpr[in.FD] = -m.fpr[in.FS1]
	case isa.OpFcmp:
		v := int64(0)
		if m.fpr[in.FS1] < m.fpr[in.FS2] {
			v = 1
		}
		m.wInt(in.RD, v)
	case isa.OpLd:
		m.wInt(in.RD, int64(m.load(m.intr[in.RS1]+in.Imm)))
	case isa.OpSt:
		m.store(m.intr[in.RS1]+in.Imm, uint64(m.intr[in.RS2]))
	case isa.OpLdf:
		m.fpr[in.FD] = math.Float64frombits(m.load(m.intr[in.RS1] + in.Imm))
	case isa.OpStf:
		m.store(m.intr[in.RS1]+in.Imm, math.Float64bits(m.fpr[in.FS2]))
	default:
		panic("differential: generator emitted unhandled op " + in.Op.String())
	}
}

// genProgram emits a random straight-line program over a small scratch
// array. Memory ops address within the array via r20, which the
// prologue pins to the array base; the generator never writes r20.
func genProgram(rng *rand.Rand, steps int) (*prog.Program, []isa.Instr) {
	b := prog.NewBuilder("rand")
	arr := b.Global("scratch", 16)
	const base isa.Reg = 20
	b.Li(base, arr)
	reg := func() isa.Reg { return isa.Reg(1 + rng.Intn(16)) } // r1..r16
	freg := func() isa.Reg { return isa.Reg(rng.Intn(16)) }
	disp := func() int64 { return int64(rng.Intn(16)) * prog.WordSize }

	var body []isa.Instr
	emit := func(in isa.Instr) {
		body = append(body, in)
	}
	for i := 0; i < steps; i++ {
		switch rng.Intn(12) {
		case 0:
			emit(isa.Instr{Op: isa.OpAddi, RD: reg(), RS1: reg(), Imm: int64(rng.Intn(2001) - 1000)})
		case 1:
			emit(isa.Instr{Op: isa.OpAdd, RD: reg(), RS1: reg(), RS2: reg()})
		case 2:
			emit(isa.Instr{Op: isa.OpSub, RD: reg(), RS1: reg(), RS2: reg()})
		case 3:
			emit(isa.Instr{Op: isa.OpMul, RD: reg(), RS1: reg(), RS2: reg()})
		case 4:
			emit(isa.Instr{Op: isa.OpDiv, RD: reg(), RS1: reg(), RS2: reg()})
		case 5:
			emit(isa.Instr{Op: []isa.Op{isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSlt, isa.OpRem}[rng.Intn(5)],
				RD: reg(), RS1: reg(), RS2: reg()})
		case 6:
			emit(isa.Instr{Op: []isa.Op{isa.OpShli, isa.OpShri, isa.OpSlti}[rng.Intn(3)],
				RD: reg(), RS1: reg(), Imm: int64(rng.Intn(64))})
		case 7:
			emit(isa.Instr{Op: isa.OpLd, RD: reg(), RS1: base, Imm: disp()})
		case 8:
			emit(isa.Instr{Op: isa.OpSt, RS2: reg(), RS1: base, Imm: disp()})
		case 9:
			emit(isa.Instr{Op: []isa.Op{isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv}[rng.Intn(4)],
				FD: freg(), FS1: freg(), FS2: freg()})
		case 10:
			emit(isa.Instr{Op: isa.OpLdf, FD: freg(), RS1: base, Imm: disp()})
		case 11:
			emit(isa.Instr{Op: isa.OpStf, FS2: freg(), RS1: base, Imm: disp()})
		}
	}
	for _, in := range body {
		switch in.Op {
		case isa.OpAddi:
			b.Addi(in.RD, in.RS1, in.Imm)
		default:
			// Emit raw via the matching builder call.
			emitRaw(b, in)
		}
	}
	b.Halt()
	return b.MustBuild(), body
}

// emitRaw forwards a generated instruction to the builder.
func emitRaw(b *prog.Builder, in isa.Instr) {
	switch in.Op {
	case isa.OpAdd:
		b.Add(in.RD, in.RS1, in.RS2)
	case isa.OpSub:
		b.Sub(in.RD, in.RS1, in.RS2)
	case isa.OpAnd:
		b.And(in.RD, in.RS1, in.RS2)
	case isa.OpOr:
		b.Or(in.RD, in.RS1, in.RS2)
	case isa.OpXor:
		b.Xor(in.RD, in.RS1, in.RS2)
	case isa.OpSlt:
		b.Slt(in.RD, in.RS1, in.RS2)
	case isa.OpMul:
		b.Mul(in.RD, in.RS1, in.RS2)
	case isa.OpDiv:
		b.Div(in.RD, in.RS1, in.RS2)
	case isa.OpRem:
		b.Rem(in.RD, in.RS1, in.RS2)
	case isa.OpShli:
		b.Shli(in.RD, in.RS1, in.Imm)
	case isa.OpShri:
		b.Shri(in.RD, in.RS1, in.Imm)
	case isa.OpSlti:
		b.Slti(in.RD, in.RS1, in.Imm)
	case isa.OpLd:
		b.Ld(in.RD, in.RS1, in.Imm)
	case isa.OpSt:
		b.St(in.RS2, in.RS1, in.Imm)
	case isa.OpLdf:
		b.Ldf(in.FD, in.RS1, in.Imm)
	case isa.OpStf:
		b.Stf(in.FS2, in.RS1, in.Imm)
	case isa.OpFadd:
		b.Fadd(in.FD, in.FS1, in.FS2)
	case isa.OpFsub:
		b.Fsub(in.FD, in.FS1, in.FS2)
	case isa.OpFmul:
		b.Fmul(in.FD, in.FS1, in.FS2)
	case isa.OpFdiv:
		b.Fdiv(in.FD, in.FS1, in.FS2)
	case isa.OpFneg:
		b.Fneg(in.FD, in.FS1)
	case isa.OpFcmp:
		b.Fcmp(in.RD, in.FS1, in.FS2)
	default:
		panic("differential: unhandled " + in.Op.String())
	}
}

func TestInterpDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 200; trial++ {
		p, body := genProgram(rng, 60)
		arr := p.SymbolAddr("scratch")

		// Interpreter run.
		mem := NewMemory()
		mem.LoadImage(p)
		th := NewThread(0, p, mem)
		for !th.Halted {
			th.Step()
		}

		// Mini evaluator run (replays the generated body directly).
		var ms miniState
		ms.mem = make(map[int64]uint64)
		ms.intr[20] = arr
		for _, in := range body {
			ms.eval(in)
		}

		for r := 1; r <= 16; r++ {
			if uint64(ms.intr[r]) != th.Int[r] {
				t.Fatalf("trial %d: r%d = %#x, mini = %#x\n%s",
					trial, r, th.Int[r], uint64(ms.intr[r]), p.Disassemble())
			}
		}
		for r := 0; r < 16; r++ {
			got := math.Float64bits(th.FP[r])
			want := math.Float64bits(ms.fpr[r])
			if got != want {
				t.Fatalf("trial %d: f%d = %x, mini = %x", trial, r, got, want)
			}
		}
		for w := int64(0); w < 16; w++ {
			if mem.Load(arr+w*prog.WordSize) != ms.mem[arr+w*prog.WordSize] {
				t.Fatalf("trial %d: scratch[%d] = %#x, mini = %#x",
					trial, w, mem.Load(arr+w*prog.WordSize), ms.mem[arr+w*prog.WordSize])
			}
		}
	}
}

// TestTimingDifferential runs a sample of the random programs through
// the full timing pipeline as well: the committed instruction count and
// final scratch memory must match the interpreter exactly.
func TestTimingDifferential(t *testing.T) {
	// Implemented in core's tests via TimingMatchesFunctional for the
	// kernels; here we only double-check that Peek/Step agree on
	// instruction counts for random programs.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p, body := genProgram(rng, 40)
		mem := NewMemory()
		mem.LoadImage(p)
		th := NewThread(0, p, mem)
		steps := 0
		for !th.Halted {
			th.Step()
			steps++
		}
		// body + Li prologue + halt
		if steps != len(body)+2 {
			t.Fatalf("trial %d: steps = %d, want %d", trial, steps, len(body)+2)
		}
	}
}
