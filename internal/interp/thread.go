package interp

import (
	"fmt"
	"math"

	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// DynInstr is one dynamic instruction: the functional outcome of
// executing a static instruction in a thread. The timing back end
// consumes these at fetch time.
type DynInstr struct {
	Seq    uint64    // per-thread dynamic sequence number, from 0
	PC     int64     // static PC executed
	Instr  isa.Instr // the static instruction
	Addr   int64     // effective address (memory ops only)
	Taken  bool      // branch outcome (control ops only)
	Target int64     // PC actually executed next
}

// IsBranch reports whether the dynamic instruction is any control
// transfer.
func (d DynInstr) IsBranch() bool { return d.Instr.Info().Branch }

// Thread is one functional execution context: architectural registers,
// a PC, and a reference to the shared memory. Step advances it by one
// instruction.
type Thread struct {
	ID      int
	Prog    *prog.Program
	Mem     *Memory
	PC      int64
	Int     [isa.NumIntRegs]uint64
	FP      [isa.NumFPRegs]float64
	Halted  bool
	Retired uint64 // dynamic instructions executed

	// view is the thread's private handle on Mem, so threads on
	// different goroutines (parallel timing mode) never share the
	// Memory's own page cache.
	view View
}

// NewThread returns a thread positioned at the program entry with the
// conventional registers (TID, SP) initialized. Each thread gets a
// private stack region above the data segment; stacks are 64 KiB.
func NewThread(id int, p *prog.Program, mem *Memory) *Thread {
	t := &Thread{ID: id, Prog: p, Mem: mem, PC: p.Entry, view: mem.NewView()}
	t.Int[isa.RegTID] = uint64(id)
	const stackSize = 64 * 1024
	base := ((p.DataEnd + pageBytes - 1) / pageBytes) * pageBytes
	t.Int[isa.RegSP] = uint64(base + int64(id+1)*stackSize)
	return t
}

// Peek returns the next static instruction without executing it.
// Calling Peek on a halted thread panics.
func (t *Thread) Peek() isa.Instr {
	if t.Halted {
		panic(fmt.Sprintf("interp: Peek on halted thread %d", t.ID))
	}
	if t.PC < 0 || t.PC >= int64(len(t.Prog.Code)) {
		panic(fmt.Sprintf("interp: thread %d: PC %d out of range", t.ID, t.PC))
	}
	return t.Prog.Code[t.PC]
}

func (t *Thread) readInt(r isa.Reg) int64 { return int64(t.Int[r]) }

func (t *Thread) writeInt(r isa.Reg, v int64) {
	if r != isa.RegZero {
		t.Int[r] = uint64(v)
	}
}

// Step executes exactly one instruction and returns its dynamic event.
// Synchronization ops (lock/unlock/barrier) execute as control no-ops:
// the caller (timing front end or functional scheduler) is responsible
// for blocking the thread until the sync controller grants the
// operation, and must only call Step once it is granted.
func (t *Thread) Step() DynInstr {
	in := t.Peek()
	inf := in.Info()
	d := DynInstr{Seq: t.Retired, PC: t.PC, Instr: in}
	next := t.PC + 1

	switch in.Op {
	case isa.OpAdd:
		t.writeInt(in.RD, t.readInt(in.RS1)+t.readInt(in.RS2))
	case isa.OpSub:
		t.writeInt(in.RD, t.readInt(in.RS1)-t.readInt(in.RS2))
	case isa.OpAnd:
		t.writeInt(in.RD, t.readInt(in.RS1)&t.readInt(in.RS2))
	case isa.OpOr:
		t.writeInt(in.RD, t.readInt(in.RS1)|t.readInt(in.RS2))
	case isa.OpXor:
		t.writeInt(in.RD, t.readInt(in.RS1)^t.readInt(in.RS2))
	case isa.OpSlt:
		t.writeInt(in.RD, boolToInt(t.readInt(in.RS1) < t.readInt(in.RS2)))
	case isa.OpShl:
		t.writeInt(in.RD, t.readInt(in.RS1)<<(t.Int[in.RS2]&63))
	case isa.OpShr:
		t.writeInt(in.RD, int64(t.Int[in.RS1]>>(t.Int[in.RS2]&63)))
	case isa.OpAddi:
		t.writeInt(in.RD, t.readInt(in.RS1)+in.Imm)
	case isa.OpSlti:
		t.writeInt(in.RD, boolToInt(t.readInt(in.RS1) < in.Imm))
	case isa.OpAndi:
		t.writeInt(in.RD, t.readInt(in.RS1)&in.Imm)
	case isa.OpOri:
		t.writeInt(in.RD, t.readInt(in.RS1)|in.Imm)
	case isa.OpShli:
		t.writeInt(in.RD, t.readInt(in.RS1)<<uint(in.Imm&63))
	case isa.OpShri:
		t.writeInt(in.RD, int64(t.Int[in.RS1]>>uint(in.Imm&63)))
	case isa.OpLui:
		t.writeInt(in.RD, in.Imm<<16)
	case isa.OpMul:
		t.writeInt(in.RD, t.readInt(in.RS1)*t.readInt(in.RS2))
	case isa.OpDiv:
		den := t.readInt(in.RS2)
		if den == 0 {
			t.writeInt(in.RD, 0)
		} else {
			t.writeInt(in.RD, t.readInt(in.RS1)/den)
		}
	case isa.OpRem:
		den := t.readInt(in.RS2)
		if den == 0 {
			t.writeInt(in.RD, 0)
		} else {
			t.writeInt(in.RD, t.readInt(in.RS1)%den)
		}

	case isa.OpBeq:
		d.Taken = t.readInt(in.RS1) == t.readInt(in.RS2)
	case isa.OpBne:
		d.Taken = t.readInt(in.RS1) != t.readInt(in.RS2)
	case isa.OpBlt:
		d.Taken = t.readInt(in.RS1) < t.readInt(in.RS2)
	case isa.OpBge:
		d.Taken = t.readInt(in.RS1) >= t.readInt(in.RS2)
	case isa.OpJump:
		d.Taken = true
	case isa.OpJal:
		t.writeInt(in.RD, t.PC+1)
		d.Taken = true
	case isa.OpJr:
		d.Taken = true

	case isa.OpLd:
		d.Addr = t.readInt(in.RS1) + in.Imm
		t.writeInt(in.RD, int64(t.view.Load(d.Addr)))
	case isa.OpSt:
		d.Addr = t.readInt(in.RS1) + in.Imm
		t.view.Store(d.Addr, t.Int[in.RS2])
	case isa.OpLdf:
		d.Addr = t.readInt(in.RS1) + in.Imm
		t.FP[in.FD] = math.Float64frombits(t.view.Load(d.Addr))
	case isa.OpStf:
		d.Addr = t.readInt(in.RS1) + in.Imm
		t.view.Store(d.Addr, math.Float64bits(t.FP[in.FS2]))
	case isa.OpSwap:
		d.Addr = t.readInt(in.RS1) + in.Imm
		t.writeInt(in.RD, int64(t.view.Swap(d.Addr, t.Int[in.RS2])))

	case isa.OpFadd:
		t.FP[in.FD] = t.FP[in.FS1] + t.FP[in.FS2]
	case isa.OpFsub:
		t.FP[in.FD] = t.FP[in.FS1] - t.FP[in.FS2]
	case isa.OpFmul:
		t.FP[in.FD] = t.FP[in.FS1] * t.FP[in.FS2]
	case isa.OpFdiv:
		t.FP[in.FD] = t.FP[in.FS1] / t.FP[in.FS2]
	case isa.OpFneg:
		t.FP[in.FD] = -t.FP[in.FS1]
	case isa.OpFmov:
		t.FP[in.FD] = t.FP[in.FS1]
	case isa.OpFcvt:
		t.FP[in.FD] = float64(t.readInt(in.RS1))
	case isa.OpFcmp:
		t.writeInt(in.RD, boolToInt(t.FP[in.FS1] < t.FP[in.FS2]))

	case isa.OpLock, isa.OpUnlock, isa.OpBarrier, isa.OpNop:
		// Functional no-ops; sync semantics live in the controller.
	case isa.OpHalt:
		t.Halted = true
	default:
		panic(fmt.Sprintf("interp: unimplemented opcode %v", in.Op))
	}

	if inf.Branch {
		if d.Taken {
			if in.Op == isa.OpJr {
				next = t.readInt(in.RS1)
			} else {
				next = t.PC + in.Imm
			}
		}
	}
	d.Target = next
	t.PC = next
	t.Retired++
	return d
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
